(* The content-addressed synthesis cache, proven correct differentially:
   whatever the cache state — cold, warm, shared between --jobs widths,
   evicted down to nothing, or corrupted on disk — synthesis must
   produce the same bytes as the uncached sequential reference, and the
   canonical STG digest the keys hang off must be exactly as stable as
   the specification's semantics (invariant under reordering and
   round-trips, distinct under any single-arc edit). *)

let data_dir = Filename.concat ".." "data"

let g_files () =
  Sys.readdir data_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".g")
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* ------------------------------------------------------------------ *)
(* Throwaway stores                                                    *)
(* ------------------------------------------------------------------ *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mpsyn-test-cache.%d.%d" (Unix.getpid ()) !dir_counter)

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> remove_tree (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let with_store ?max_bytes f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> remove_tree dir)
    (fun () -> f dir (Cache_store.open_dir ?max_bytes dir))

(* The entry subdirectory is the schema major version ("2" for
   mpsyn-cache/3) — derived here the same way the store derives it, so
   the corruption tests can reach the files without new API surface. *)
let entry_dir root =
  let v = Cache_store.schema_version in
  let major =
    match String.rindex_opt v '/' with
    | Some i -> String.sub v (i + 1) (String.length v - i - 1)
    | None -> v
  in
  Filename.concat root major

let entry_files root =
  match Sys.readdir (entry_dir root) with
  | files ->
    Array.to_list files
    |> List.filter (fun n -> n = "" || n.[0] <> '.')
    |> List.map (Filename.concat (entry_dir root))
  | exception Sys_error _ -> []

let corrupt_byte path =
  let body = Bytes.of_string (read_file path) in
  let i = Bytes.length body / 2 in
  Bytes.set body i (Char.chr (Char.code (Bytes.get body i) lxor 0xff));
  write_file path (Bytes.to_string body)

(* ------------------------------------------------------------------ *)
(* Canonical STG digest: the content address                           *)
(* ------------------------------------------------------------------ *)

let shuffle rand a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rand (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

(* Permute everything the digest must not depend on: the arc lines
   between .graph and .marking, and the token order inside the marking
   braces.  Signal declaration order stays put — signal indices give
   state codes their meaning, so .inputs/.outputs order is semantics,
   not presentation. *)
let permuted_g rand text =
  let lines = String.split_on_char '\n' text in
  let is_marking l = String.length l >= 8 && String.sub l 0 8 = ".marking" in
  let rec split_head acc = function
    | [] -> (List.rev acc, [])
    | l :: rest when String.trim l = ".graph" -> (List.rev (l :: acc), rest)
    | l :: rest -> split_head (l :: acc) rest
  in
  let head, rest = split_head [] lines in
  let rec split_arcs acc = function
    | [] -> (List.rev acc, [])
    | l :: rest when is_marking (String.trim l) -> (List.rev acc, l :: rest)
    | l :: rest -> split_arcs (l :: acc) rest
  in
  let arcs, tail = split_arcs [] rest in
  let arcs = Array.of_list arcs in
  shuffle rand arcs;
  let tail =
    List.map
      (fun l ->
        if not (is_marking (String.trim l)) then l
        else
          match (String.index_opt l '{', String.index_opt l '}') with
          | Some o, Some c when c > o ->
            let toks =
              String.sub l (o + 1) (c - o - 1)
              |> String.split_on_char ' '
              |> List.filter (fun t -> t <> "")
              |> Array.of_list
            in
            shuffle rand toks;
            Printf.sprintf "%s{ %s }%s" (String.sub l 0 o)
              (String.concat " " (Array.to_list toks))
              (String.sub l (c + 1) (String.length l - c - 1))
          | _ -> l)
      tail
  in
  String.concat "\n" (head @ Array.to_list arcs @ tail)

let test_digest_reorder () =
  let rand = Qseed.state () in
  List.iter
    (fun file ->
      let path = Filename.concat data_dir file in
      let reference = Cache_key.stg_digest (Gformat.parse_file path) in
      let text = read_file path in
      for i = 1 to 3 do
        let permuted = permuted_g rand text in
        let d =
          Cache_key.stg_digest
            (Gformat.parse_string ~name:(Filename.chop_extension file) permuted)
        in
        Alcotest.(check string)
          (Printf.sprintf "%s: digest invariant under permutation %d" file i)
          reference d
      done)
    (g_files ())

let test_digest_roundtrip () =
  List.iter
    (fun file ->
      let stg = Gformat.parse_file (Filename.concat data_dir file) in
      let canonical = Cache_key.canonical_g stg in
      let reparsed = Gformat.parse_string ~name:(Stg.name stg) canonical in
      Alcotest.(check string)
        (file ^ ": digest survives a .g round-trip")
        (Cache_key.stg_digest stg)
        (Cache_key.stg_digest reparsed);
      Alcotest.(check string)
        (file ^ ": canonical form is idempotent")
        canonical
        (Cache_key.canonical_g reparsed))
    (g_files ())

let test_digest_roundtrip_random () =
  let rand = Qseed.state () in
  for i = 1 to 20 do
    let stg = Bench_gen.random ~rand in
    let reparsed = Gformat.parse_string ~name:(Stg.name stg) (Gformat.to_string stg) in
    Alcotest.(check string)
      (Printf.sprintf "random STG %d: digest survives a round-trip" i)
      (Cache_key.stg_digest stg)
      (Cache_key.stg_digest reparsed)
  done

(* Dropping any single arc line is a different net and must be a
   different address — a cache that cannot tell them apart would serve
   one specification's circuit for another. *)
let test_digest_mutation () =
  let rand = Qseed.state () in
  List.iter
    (fun file ->
      let path = Filename.concat data_dir file in
      let reference = Cache_key.stg_digest (Gformat.parse_file path) in
      let lines = String.split_on_char '\n' (read_file path) in
      let is_arc l =
        let l = String.trim l in
        l <> "" && l.[0] <> '.' && l.[0] <> '#'
      in
      let arc_positions =
        List.filteri (fun _ _ -> true) lines
        |> List.mapi (fun i l -> (i, l))
        |> List.filter (fun (_, l) -> is_arc l)
        |> List.map fst
      in
      (* three seeded single-arc deletions per file keeps the suite
         fast while every file still exercises the property *)
      for _ = 1 to 3 do
        let victim =
          List.nth arc_positions
            (Random.State.int rand (List.length arc_positions))
        in
        let mutated =
          String.concat "\n"
            (List.filteri (fun i _ -> i <> victim) lines)
        in
        match Gformat.parse_string ~name:"mutant" mutated with
        | mutant ->
          if Cache_key.stg_digest mutant = reference then
            Alcotest.failf
              "%s: deleting arc line %d left the digest unchanged" file victim
        | exception Gformat.Parse_error _ -> () (* unparsable mutant: fine *)
      done)
    (g_files ())

(* Different stages or different option fingerprints must never share
   an entry even for identical content. *)
let test_key_separation () =
  let d = Cache_key.string_digest "same content" in
  let k1 = Cache_key.entry ~stage:"synth" ~params:[ ("a", "1") ] d in
  let k2 = Cache_key.entry ~stage:"sg" ~params:[ ("a", "1") ] d in
  let k3 = Cache_key.entry ~stage:"synth" ~params:[ ("a", "2") ] d in
  let k4 = Cache_key.entry ~stage:"synth" ~params:[ ("a", "1") ] d in
  Alcotest.(check bool) "stages separate" false (k1 = k2);
  Alcotest.(check bool) "fingerprints separate" false (k1 = k3);
  Alcotest.(check string) "same inputs, same key" k1 k4;
  Alcotest.(check string) "params order-insensitive"
    (Cache_key.entry ~stage:"s" ~params:[ ("a", "1"); ("b", "2") ] d)
    (Cache_key.entry ~stage:"s" ~params:[ ("b", "2"); ("a", "1") ] d)

(* ------------------------------------------------------------------ *)
(* Store robustness: truncation, corruption, eviction                  *)
(* ------------------------------------------------------------------ *)

(* Count the diagnostics the store logs on corrupt entries, so the
   tests can assert a drop was reported, not silent. *)
let log_warnings = ref 0

let () =
  Logs.set_reporter
    {
      Logs.report =
        (fun _src level ~over k msgf ->
          if level = Logs.Warning then incr log_warnings;
          msgf (fun ?header:_ ?tags:_ fmt ->
              Format.ikfprintf
                (fun _ -> over (); k ())
                Format.str_formatter fmt));
    }

let test_store_roundtrip () =
  with_store (fun _dir store ->
      Cache_calls.reset ();
      Alcotest.(check (option (list int))) "absent key misses" None
        (Cache_store.get store "absent");
      Cache_store.put store "k1" [ 1; 2; 3 ];
      Alcotest.(check (option (list int))) "roundtrip" (Some [ 1; 2; 3 ])
        (Cache_store.get store "k1");
      Alcotest.(check int) "one hit" 1 (Cache_calls.hits ());
      Alcotest.(check int) "one miss" 1 (Cache_calls.misses ());
      Cache_store.put store "k1" [ 9 ];
      Alcotest.(check (option (list int))) "overwrite wins" (Some [ 9 ])
        (Cache_store.get store "k1"))

let test_store_truncation () =
  with_store (fun dir store ->
      Cache_store.put store "k" (Array.init 200 string_of_int);
      (match entry_files dir with
      | [ path ] -> Unix.truncate path 7
      | files -> Alcotest.failf "expected 1 entry file, found %d" (List.length files));
      let before = !log_warnings in
      Cache_calls.reset ();
      Alcotest.(check bool) "truncated entry misses" true
        (Cache_store.get store "k" = (None : string array option));
      Alcotest.(check int) "miss recorded" 1 (Cache_calls.misses ());
      Alcotest.(check bool) "drop was logged" true (!log_warnings > before);
      Alcotest.(check int) "corrupt entry deleted" 0
        (List.length (entry_files dir));
      (* the slot is usable again immediately *)
      Cache_store.put store "k" [| "fresh" |];
      Alcotest.(check bool) "re-put after truncation" true
        (Cache_store.get store "k" = Some [| "fresh" |]))

let test_store_bitflip () =
  with_store (fun dir store ->
      Cache_store.put store "k" (String.make 512 'x');
      List.iter corrupt_byte (entry_files dir);
      Alcotest.(check (option string)) "bit-flipped entry misses" None
        (Cache_store.get store "k");
      Alcotest.(check int) "corrupt entry deleted" 0
        (List.length (entry_files dir)))

let test_store_foreign () =
  with_store (fun dir store ->
      write_file (Filename.concat (entry_dir dir) "k") "not a cache entry";
      Alcotest.(check (option string)) "foreign file misses" None
        (Cache_store.get store "k"))

let test_store_eviction () =
  with_store ~max_bytes:1 (fun _dir store ->
      Cache_store.put store "a" (String.make 100 'a');
      Cache_store.put store "b" (String.make 100 'b');
      (* every write exceeds the bound, so the store keeps evicting down
         to (at most) the newest entry; correctness only needs that gets
         keep working — they just miss *)
      Alcotest.(check bool) "size bound enforced" true
        (Cache_store.entries store <= 1);
      ignore (Cache_store.get store "a" : string option);
      ignore (Cache_store.get store "b" : string option));
  with_store ~max_bytes:100_000 (fun _dir store ->
      for i = 1 to 20 do
        Cache_store.put store (string_of_int i) (String.make 10_000 'x')
      done;
      Alcotest.(check bool) "under the bound" true
        (Cache_store.total_bytes store <= 100_000);
      Alcotest.(check bool) "newest survives LRU" true
        (Cache_store.get store "20" = Some (String.make 10_000 'x')))

let test_store_clear () =
  with_store (fun _dir store ->
      Cache_store.put store "a" 1;
      Cache_store.put store "b" 2;
      Cache_store.clear store;
      Alcotest.(check int) "cleared" 0 (Cache_store.entries store);
      Alcotest.(check (option int)) "post-clear miss" None
        (Cache_store.get store "a"))

(* ------------------------------------------------------------------ *)
(* Differential: cold vs warm over the whole shipped suite             *)
(* ------------------------------------------------------------------ *)

let verilog stg (r : Mpart.result) =
  let inputs = List.map (Stg.signal_name stg) (Stg.inputs stg) in
  Netlist.to_verilog
    (Netlist.of_functions ~name:(Stg.name stg) ~inputs r.Mpart.functions)

let netlist stg (r : Mpart.result) =
  let inputs = List.map (Stg.signal_name stg) (Stg.inputs stg) in
  Netlist.of_functions ~name:(Stg.name stg) ~inputs r.Mpart.functions

let synth ?cache ~jobs stg =
  Mpart.synthesize_best ~config:{ Mpart.default_config with jobs; cache } stg

(* The full lint + hazard evidence for a result, rendered; cold and
   warm runs must agree on every byte of it, not just the netlist. *)
let reports stg (r : Mpart.result) =
  let nl = netlist stg r in
  let hz = Hazard_check.analyze ~expanded:r.Mpart.expanded ~functions:r.Mpart.functions nl in
  Format.asprintf "%a@.%s@.%a"
    Diagnostic.pp (Lint.run_netlist nl)
    (Hazard_check.verdict_name hz)
    (Fmt.list Diagnostic.pp_diag) hz.Hazard_check.diags

let test_cold_warm_suite () =
  with_store (fun _dir store ->
      List.iter
        (fun file ->
          let stg = Gformat.parse_file (Filename.concat data_dir file) in
          let reference = verilog stg (synth ~jobs:1 stg) in
          let rc = synth ~cache:store ~jobs:1 stg in
          Alcotest.(check string)
            (file ^ ": cold = uncached") reference (verilog stg rc);
          Cache_calls.reset ();
          let rw = synth ~cache:store ~jobs:1 stg in
          Alcotest.(check string)
            (file ^ ": warm = uncached") reference (verilog stg rw);
          Alcotest.(check bool)
            (file ^ ": warm run hit the cache") true (Cache_calls.hits () > 0);
          let rw4 = synth ~cache:store ~jobs:4 stg in
          Alcotest.(check string)
            (file ^ ": warm at jobs=4 = uncached") reference (verilog stg rw4);
          Alcotest.(check string)
            (file ^ ": lint/hazard reports identical cold vs warm")
            (reports stg rc) (reports stg rw))
        (g_files ()))

(* A cache evicted down to nothing is pure overhead, never wrong. *)
let test_evicting_cache_correct () =
  with_store ~max_bytes:1 (fun _dir store ->
      List.iter
        (fun file ->
          let stg = Gformat.parse_file (Filename.concat data_dir file) in
          let reference = verilog stg (synth ~jobs:1 stg) in
          Alcotest.(check string)
            (file ^ ": run 1 under eviction") reference
            (verilog stg (synth ~cache:store ~jobs:1 stg));
          Alcotest.(check string)
            (file ^ ": run 2 under eviction") reference
            (verilog stg (synth ~cache:store ~jobs:1 stg)))
        [ "atod.g"; "fifo.g"; "nak-pa.g" ])

(* Every entry damaged mid-suite: the warm run degrades to a cold one,
   byte-identically. *)
let test_corrupted_cache_correct () =
  with_store (fun dir store ->
      List.iter
        (fun file ->
          let stg = Gformat.parse_file (Filename.concat data_dir file) in
          let reference = verilog stg (synth ~jobs:1 stg) in
          Alcotest.(check string)
            (file ^ ": populate") reference
            (verilog stg (synth ~cache:store ~jobs:1 stg));
          List.iter corrupt_byte (entry_files dir);
          let warned_before = !log_warnings in
          Alcotest.(check string)
            (file ^ ": after corruption") reference
            (verilog stg (synth ~cache:store ~jobs:1 stg));
          (* hits can legitimately occur — the run re-puts entries and
             its later stages reuse them — but every damaged entry that
             was touched must have been dropped with a diagnostic, never
             decoded *)
          Alcotest.(check bool)
            (file ^ ": corrupt entries were logged as dropped") true
            (!log_warnings > warned_before))
        [ "atod.g"; "vbe4a.g" ])

(* The verification oracle's cached explorations: a warm certificate
   must replay the cold one and stop simulating. *)
let test_oracle_warm () =
  with_store (fun _dir store ->
      let stg = Gformat.parse_file (Filename.concat data_dir "atod.g") in
      let impl = Oracle.impl_of_result (Mpart.synthesize stg) in
      let cold = Oracle.certify ~cache:store impl in
      let sim_before = Sim_calls.total () in
      Cache_calls.reset ();
      let warm = Oracle.certify ~cache:store impl in
      Alcotest.(check bool) "cold certificate passes" true (Oracle.passed cold);
      Alcotest.(check bool) "warm certificate passes" true (Oracle.passed warm);
      Alcotest.(check bool) "warm certify hit the cache" true
        (Cache_calls.hits () > 0);
      Alcotest.(check int) "warm certify ran no simulation" sim_before
        (Sim_calls.total ());
      Alcotest.(check string) "reports render identically"
        (Format.asprintf "%a" Oracle.pp_report cold)
        (Format.asprintf "%a" Oracle.pp_report warm))

(* ------------------------------------------------------------------ *)
(* Concurrency: one directory, many writers                            *)
(* ------------------------------------------------------------------ *)

(* All 23 benchmarks synthesized concurrently against one shared store,
   twice — the first round races cold writers, the second mixes hits
   with leftover writes — and each netlist must equal the cold
   sequential reference. *)
let test_shared_store_concurrent () =
  with_store (fun _dir store ->
      let files = Array.of_list (g_files ()) in
      let stgs =
        Array.map (fun f -> Gformat.parse_file (Filename.concat data_dir f)) files
      in
      let reference = Array.map (fun stg -> verilog stg (synth ~jobs:1 stg)) stgs in
      for round = 1 to 2 do
        let got =
          Pool.map ~jobs:4
            (fun stg -> verilog stg (synth ~cache:store ~jobs:1 stg))
            stgs
        in
        Array.iteri
          (fun i v ->
            Alcotest.(check string)
              (Printf.sprintf "%s: concurrent round %d = sequential reference"
                 files.(i) round)
              reference.(i) v)
          got
      done)

(* Eight domains racing to publish the same key: rename-atomicity means
   everyone computes the same bytes and the store ends up valid. *)
let test_same_key_race () =
  with_store (fun _dir store ->
      let stg = Gformat.parse_file (Filename.concat data_dir "nak-pa.g") in
      let reference = verilog stg (synth ~jobs:1 stg) in
      let got =
        Pool.map ~jobs:4
          (fun stg -> verilog stg (synth ~cache:store ~jobs:1 stg))
          (Array.make 8 stg)
      in
      Array.iteri
        (fun i v ->
          Alcotest.(check string)
            (Printf.sprintf "racer %d matches the reference" i)
            reference v)
        got;
      (* whatever racer won the rename, the published entry is whole *)
      Cache_calls.reset ();
      Alcotest.(check string) "entry valid after the race" reference
        (verilog stg (synth ~cache:store ~jobs:1 stg));
      Alcotest.(check bool) "and it was served from the cache" true
        (Cache_calls.hits () > 0))

let () =
  Qseed.announce ();
  if g_files () = [] then failwith "test_cache: no .g files under ../data";
  Alcotest.run "cache"
    [
      ( "canonical digest",
        [
          Alcotest.test_case "invariant under reordering" `Quick
            test_digest_reorder;
          Alcotest.test_case "invariant under .g round-trips" `Quick
            test_digest_roundtrip;
          Alcotest.test_case "round-trips on random STGs" `Quick
            test_digest_roundtrip_random;
          Alcotest.test_case "distinct under single-arc deletion" `Quick
            test_digest_mutation;
          Alcotest.test_case "stage/fingerprint key separation" `Quick
            test_key_separation;
        ] );
      ( "store robustness",
        [
          Alcotest.test_case "put/get roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "truncated entry is a logged miss" `Quick
            test_store_truncation;
          Alcotest.test_case "bit-flipped entry is a miss" `Quick
            test_store_bitflip;
          Alcotest.test_case "foreign file is a miss" `Quick test_store_foreign;
          Alcotest.test_case "LRU eviction enforces the bound" `Quick
            test_store_eviction;
          Alcotest.test_case "clear empties the store" `Quick test_store_clear;
        ] );
      ( "cold vs warm differential",
        [
          Alcotest.test_case "all shipped benchmarks, jobs 1 and 4" `Slow
            test_cold_warm_suite;
          Alcotest.test_case "evicting cache stays correct" `Quick
            test_evicting_cache_correct;
          Alcotest.test_case "corrupted cache stays correct" `Quick
            test_corrupted_cache_correct;
          Alcotest.test_case "oracle warm certificate replays" `Quick
            test_oracle_warm;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "23 benchmarks, one store, jobs=4" `Slow
            test_shared_store_concurrent;
          Alcotest.test_case "same-key publish race" `Quick test_same_key_race;
        ] );
    ]
