(* The tentpole as a tier-1 gate: every shipped benchmark must
   synthesize into a netlist that passes the conformance oracle, and
   random STGs must synthesize identically-correctly under every solver
   backend (differential fuzzing).  See lib/verify for the oracle. *)

let data_dir = Filename.concat ".." "data"

let g_files () =
  Sys.readdir data_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".g")
  |> List.sort compare

(* ---------------- shipped benchmarks ---------------- *)

let test_benchmark file () =
  let stg = Gformat.parse_file (Filename.concat data_dir file) in
  let r = Mpart.synthesize stg in
  let report = Oracle.certify (Oracle.impl_of_result r) in
  if not (Oracle.passed report) then
    Alcotest.failf "%s:@\n%a" file Oracle.pp_report report

(* ---------------- differential fuzzing ---------------- *)

(* 50 random STGs, every backend (walksat, dpll, bdd, direct) on each:
   the three modular backends must agree on solvability and every
   produced circuit must pass the oracle; the whole-graph direct
   baseline may abstain on its time budget (that scaling gap is the
   paper's point) but must be correct whenever it answers. *)
let n_fuzz = 50

let test_differential_fuzz () =
  let rand = Random.State.make [| Qseed.seed |] in
  for i = 1 to n_fuzz do
    let stg = Bench_gen.random ~rand in
    let d = Oracle.differential_one ~time_limit:2.0 stg in
    if not d.Oracle.ok then
      Alcotest.failf "fuzz case %d/%d (QCHECK_SEED=%d):@\n%a@\n%s" i n_fuzz
        Qseed.seed Oracle.pp_differential d (Gformat.to_string stg)
  done

let () =
  Qseed.announce ();
  let files = g_files () in
  if files = [] then failwith "test_conformance: no .g files under ../data";
  Alcotest.run "conformance"
    [
      ( "benchmarks",
        List.map
          (fun f -> Alcotest.test_case f `Quick (test_benchmark f))
          files );
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "%d random STGs x 4 backends" n_fuzz)
            `Slow test_differential_fuzz;
        ] );
    ]
