(* Static-analysis (lint) engine tests.

   Three pillars:
   - mutated benchmarks: each injected defect class is caught by the
     rule that owns it, with a source span pointing at the offending
     declaration or arc;
   - zero false positives: every shipped clean STG (data/*.g and the
     built-in reconstructions) lints with no errors and no warnings;
   - the A6 lock-relation prescreen: the lock-ring family is certified
     and `Mpart.synthesize` provably skips SAT — asserted through the
     process-wide solver-call counter, not trusted from a flag — while
     an uncertified benchmark provably does call the solver.  A
     dynamic cross-check validates every certificate the prescreen
     issues against the real state graph. *)

let data_dir = Filename.concat ".." "data"

let g_files () =
  Sys.readdir data_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".g")
  |> List.sort compare

let lint_string src =
  let stg, map = Gformat.parse_string_spans src in
  (Lint.run ~map stg, map)

let find_rule report rule =
  List.filter
    (fun d -> d.Diagnostic.rule = rule)
    report.Diagnostic.diagnostics

let has_error_on rule subject report =
  List.exists
    (fun d ->
      d.Diagnostic.severity = Diagnostic.Error
      && Diagnostic.subject_name d.Diagnostic.subject = subject)
    (find_rule report rule)

let check b msg = Alcotest.(check bool) msg true b

(* ---- source spans ---- *)

let test_spans () =
  let src =
    ".model spans\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- \
     a+\n.marking { <b-,a+> }\n.end\n"
  in
  let _, map = Gformat.parse_string_spans src in
  (match Gformat.signal_span map "b" with
  | Some s ->
    Alcotest.(check int) "signal b line" 3 s.Gformat.line;
    Alcotest.(check int) "signal b col" 10 s.Gformat.col_start
  | None -> Alcotest.fail "no span for signal b");
  (match Gformat.transition_span map "a-" with
  | Some s ->
    (* first occurrence: line 6, "b+ a-" *)
    Alcotest.(check int) "a- line" 6 s.Gformat.line;
    Alcotest.(check int) "a- col" 4 s.Gformat.col_start
  | None -> Alcotest.fail "no span for a-");
  check (Gformat.place_span map "<b-,a+>" <> None) "implicit place has a span"

(* ---- mutated benchmarks, one per defect class ---- *)

(* b rises twice per cycle and never falls: A1 must blame signal b at
   its declaration site. *)
let test_mutant_inconsistent () =
  let report, map =
    lint_string
      ".model m-incons\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- \
       b+/2\nb+/2 a+\n.marking { <b+/2,a+> }\n.end\n"
  in
  let report = report.Lint.report in
  check (has_error_on "A1-consistency" "b" report) "A1 blames signal b";
  let d =
    List.find
      (fun d -> Diagnostic.subject_name d.Diagnostic.subject = "b")
      (find_rule report "A1-consistency")
  in
  Alcotest.(check (option (of_pp Gformat.pp_span)))
    "A1 span is b's declaration" (Gformat.signal_span map "b")
    d.Diagnostic.span;
  check (d.Diagnostic.span <> None) "A1 span present"

(* An extra token on the explicit place p0 lifts the ring invariant's
   conserved sum to 2: A2 must flag the structural bound. *)
let test_mutant_unsafe () =
  let report, map =
    lint_string
      ".model m-unsafe\n.inputs a\n.outputs b\n.graph\na+ p0\np0 b+\nb+ \
       a-\na- b-\nb- a+\n.marking { <b-,a+> p0 }\n.end\n"
  in
  let report = report.Lint.report in
  check (has_error_on "A2-safeness" "p0" report) "A2 blames place p0";
  let d =
    List.find
      (fun d -> Diagnostic.subject_name d.Diagnostic.subject = "p0")
      (find_rule report "A2-safeness")
  in
  Alcotest.(check (option (of_pp Gformat.pp_span)))
    "A2 span is p0's first occurrence" (Gformat.place_span map "p0")
    d.Diagnostic.span;
  check (d.Diagnostic.span <> None) "A2 span present"

(* Signal c's private cycle carries no token: its transitions can never
   fire.  A4 owns the finding (A2 also reports the unmarkable places). *)
let test_mutant_dead () =
  let report, map =
    lint_string
      ".model m-dead\n.inputs a\n.outputs b c\n.graph\na+ b+\nb+ a-\na- \
       b-\nb- a+\np0 c+\nc+ p1\np1 c-\nc- p0\n.marking { <b-,a+> }\n.end\n"
  in
  let report = report.Lint.report in
  check (has_error_on "A4-deadcode" "c+" report) "A4 blames transition c+";
  check (has_error_on "A4-deadcode" "c-" report) "A4 blames transition c-";
  let d =
    List.find
      (fun d -> Diagnostic.subject_name d.Diagnostic.subject = "c+")
      (find_rule report "A4-deadcode")
  in
  Alcotest.(check (option (of_pp Gformat.pp_span)))
    "A4 span is c+'s first occurrence"
    (Gformat.transition_span map "c+")
    d.Diagnostic.span;
  check (d.Diagnostic.span <> None) "A4 span present"

(* Two concurrent branches each transition b: rise/fall counts stay
   balanced (A1 clean) but the two b+ instances can fire together. *)
let test_mutant_autoconcurrent () =
  let report, _ =
    lint_string
      ".model m-autoconc\n.inputs a\n.outputs b\n.graph\na+ b+ b+/2\nb+ \
       b-\nb+/2 b-/2\nb- a-\nb-/2 a-\na- a+\n.marking { <a-,a+> }\n.end\n"
  in
  let report = report.Lint.report in
  check
    (find_rule report "A1-consistency"
    |> List.for_all (fun d -> d.Diagnostic.severity <> Diagnostic.Error))
    "A1 stays quiet (balanced counts)";
  let a5 = find_rule report "A5-autoconcurrency" in
  check (a5 <> []) "A5 fires";
  check
    (List.exists
       (fun d ->
         d.Diagnostic.severity = Diagnostic.Warning
         && d.Diagnostic.span <> None)
       a5)
    "A5 warning carries a span"

(* lock-ring3 with the falling phase reordered: s2- follows s0- directly,
   so s1/s2 no longer alternate.  Still consistent, safe and even CSC —
   but the certificate must be withheld and must name the pair. *)
let test_mutant_unlocked () =
  let result, _ =
    lint_string
      ".model m-unlocked\n.inputs s0\n.outputs s1 s2\n.graph\ns0+ s1+\ns1+ \
       s2+\ns2+ s0-\ns0- s2-\ns2- s1-\ns1- s0+\n.marking { <s1-,s0+> }\n.end\n"
  in
  check (result.Lint.cert = None) "certificate withheld";
  let a6 = find_rule result.Lint.report "A6-lockrel" in
  check
    (List.exists
       (fun d ->
         let m = d.Diagnostic.message in
         (* mentions both signals of the unlocked pair *)
         let mem sub =
           let n = String.length sub and len = String.length m in
           let rec go i = i + n <= len && (String.sub m i n = sub || go (i + 1)) in
           go 0
         in
         mem "not certified" && mem "s1" && mem "s2")
       a6)
    "A6 names the unlocked pair";
  check (Diagnostic.clean result.Lint.report) "mutant is otherwise clean"

(* ---- zero false positives over every clean specification ---- *)

let test_no_false_positives_data () =
  List.iter
    (fun f ->
      let stg, map = Gformat.parse_file_spans (Filename.concat data_dir f) in
      let { Lint.report; _ } = Lint.run ~map stg in
      check (Diagnostic.clean report) (f ^ ": no lint errors");
      check (Diagnostic.strict_clean report) (f ^ ": no lint warnings"))
    (g_files ())

let test_no_false_positives_builtin () =
  List.iter
    (fun (name, build) ->
      let { Lint.report; _ } = Lint.run (build ()) in
      check (Diagnostic.clean report) (name ^ ": no lint errors");
      check (Diagnostic.strict_clean report) (name ^ ": no lint warnings"))
    Bench_data.all

(* ---- A6 certification and the SAT-skip proof ---- *)

let test_prescreen_certifies_rings () =
  List.iter
    (fun signals ->
      let stg = Bench_gen.lock_ring ~signals in
      check (Lint.prescreen stg <> None)
        (Printf.sprintf "lock_ring %d certified" signals))
    [ 2; 3; 5; 8 ]

let test_certified_synthesis_skips_sat () =
  List.iter
    (fun name ->
      let stg = (List.assoc name Bench_data.all) () in
      let before = Solver_calls.total () in
      let r = Mpart.synthesize stg in
      let delta = Solver_calls.total () - before in
      check r.Mpart.csc_certified (name ^ ": result records certificate");
      Alcotest.(check int) (name ^ ": zero solver calls") 0 delta;
      Alcotest.(check (option string)) (name ^ ": verifies") None (Mpart.verify r))
    [ "lock-ring2"; "lock-ring3"; "lock-ring5" ]

(* Negative control: an uncertified benchmark must actually reach the
   solver, proving the counter measures what we think it measures. *)
let test_uncertified_synthesis_calls_sat () =
  let stg = (List.assoc "vbe-ex1" Bench_data.all) () in
  let before = Solver_calls.total () in
  let r = Mpart.synthesize stg in
  let delta = Solver_calls.total () - before in
  check (not r.Mpart.csc_certified) "vbe-ex1 not certified";
  check (delta > 0) "vbe-ex1 synthesis invokes the solver"

(* Every certificate the prescreen issues must agree with the real state
   graph: soundness of the structural argument, checked dynamically. *)
let test_certificates_sound () =
  let targets =
    Bench_data.all
    @ List.map
        (fun n -> (Printf.sprintf "ring%d" n, fun () -> Bench_gen.lock_ring ~signals:n))
        [ 2; 3; 4; 5; 6; 7 ]
  in
  List.iter
    (fun (name, build) ->
      let stg = build () in
      match Lint.prescreen stg with
      | None -> ()
      | Some _ ->
        check
          (Csc.csc_satisfied (Sg.of_stg stg))
          (name ^ ": certificate agrees with the state graph"))
    targets

(* ---- netlist rules (A7) ---- *)

let netlist ~inputs ~outputs gates =
  { Netlist.name = "t"; inputs; outputs; gates }

let test_netlint_floating () =
  let nl =
    netlist ~inputs:[ "a" ] ~outputs:[ "x" ]
      [ Netlist.And { out = "x"; inputs = [ "a"; "ghost" ] } ]
  in
  let r = Lint.run_netlist nl in
  check (has_error_on "A7-netlist" "ghost" r) "floating wire flagged"

let test_netlint_multidriven () =
  let nl =
    netlist ~inputs:[ "a" ] ~outputs:[ "x" ]
      [
        Netlist.Inv { out = "x"; input = "a" };
        Netlist.Wire { out = "x"; input = "a" };
      ]
  in
  let r = Lint.run_netlist nl in
  check (has_error_on "A7-netlist" "x" r) "double driver flagged"

let test_netlint_comb_cycle () =
  let nl =
    netlist ~inputs:[ "a" ] ~outputs:[ "x" ]
      [
        Netlist.Wire { out = "x"; input = "a" };
        Netlist.Inv { out = "u"; input = "v" };
        Netlist.Inv { out = "v"; input = "u" };
      ]
  in
  let r = Lint.run_netlist nl in
  check
    (List.exists
       (fun d ->
         d.Diagnostic.severity = Diagnostic.Error
         && d.Diagnostic.message
            = "combinational cycle not passing through a state-holding wire")
       (find_rule r "A7-netlist"))
    "ring oscillator flagged"

let test_netlint_feedback_ok () =
  (* SOP next-state feedback through the implemented output is the
     intended realization — no cycle error. *)
  let nl =
    netlist ~inputs:[ "a" ] ~outputs:[ "b" ]
      [ Netlist.Or { out = "b"; inputs = [ "a"; "b" ] } ]
  in
  let r = Lint.run_netlist nl in
  check (Diagnostic.clean r) "output feedback is legitimate"

let test_netlint_unused () =
  let nl =
    netlist ~inputs:[ "a" ] ~outputs:[ "x" ]
      [
        Netlist.Wire { out = "x"; input = "a" };
        Netlist.Inv { out = "n"; input = "a" };
      ]
  in
  let r = Lint.run_netlist nl in
  check
    (List.exists
       (fun d ->
         d.Diagnostic.severity = Diagnostic.Warning
         && Diagnostic.subject_name d.Diagnostic.subject = "n")
       (find_rule r "A7-netlist"))
    "unused gate flagged as warning"

(* ---- JSON shape ---- *)

let test_json () =
  let result, _ = lint_string ".model j\n.inputs a\n.outputs b\n.graph\na+ \
                               b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> \
                               }\n.end\n" in
  let s = Diagnostic.to_json result.Lint.report in
  let mem sub =
    let n = String.length sub and len = String.length s in
    let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check (String.length s > 0 && s.[0] = '{') "object";
  check (mem "\"schema\":\"mpsyn-lint/1\"") "has schema version";
  check (mem "\"summary\"") "has summary";
  check (mem "\"diagnostics\"") "has diagnostics";
  check (mem "\"rule\":\"A3-netclass\"") "rules serialized"

(* ---- property: verdicts invariant under .g round trip ---- *)

(* Place identity is not part of the .g interchange semantics (implicit
   places are renamed by printing), so place subjects are normalized. *)
let verdict_key d =
  ( d.Diagnostic.rule,
    Diagnostic.severity_to_string d.Diagnostic.severity,
    match d.Diagnostic.subject with
    | Diagnostic.Sig n -> "sig:" ^ n
    | Diagnostic.Trans n -> "trans:" ^ n
    | Diagnostic.Place _ -> "place"
    | Diagnostic.Net _ -> "net" )

let verdicts stg =
  let { Lint.report; cert } = Lint.run stg in
  ( List.sort compare (List.map verdict_key report.Diagnostic.diagnostics),
    cert <> None )

let prop_lint_roundtrip =
  QCheck.Test.make ~name:"lint verdicts invariant under .g round trip"
    ~count:30
    QCheck.(make Gen.(return ()))
    (fun () ->
      let rand = Qseed.state () in
      let ok = ref true in
      for _ = 1 to 30 do
        let stg = Bench_gen.random ~rand in
        let reparsed = Gformat.parse_string (Gformat.to_string stg) in
        if verdicts stg <> verdicts reparsed then ok := false
      done;
      !ok)

let () =
  Alcotest.run "lint"
    [
      ( "spans",
        [ Alcotest.test_case "parser records spans" `Quick test_spans ] );
      ( "mutants",
        [
          Alcotest.test_case "A1 inconsistency" `Quick test_mutant_inconsistent;
          Alcotest.test_case "A2 unsafe place" `Quick test_mutant_unsafe;
          Alcotest.test_case "A4 dead transition" `Quick test_mutant_dead;
          Alcotest.test_case "A5 autoconcurrency" `Quick
            test_mutant_autoconcurrent;
          Alcotest.test_case "A6 unlocked pair" `Quick test_mutant_unlocked;
        ] );
      ( "clean",
        [
          Alcotest.test_case "data/*.g lint clean" `Quick
            test_no_false_positives_data;
          Alcotest.test_case "built-ins lint clean" `Quick
            test_no_false_positives_builtin;
        ] );
      ( "prescreen",
        [
          Alcotest.test_case "rings certified" `Quick
            test_prescreen_certifies_rings;
          Alcotest.test_case "certified synthesis skips SAT" `Quick
            test_certified_synthesis_skips_sat;
          Alcotest.test_case "uncertified synthesis calls SAT" `Quick
            test_uncertified_synthesis_calls_sat;
          Alcotest.test_case "certificates sound" `Quick
            test_certificates_sound;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "floating wire" `Quick test_netlint_floating;
          Alcotest.test_case "double driver" `Quick test_netlint_multidriven;
          Alcotest.test_case "combinational cycle" `Quick
            test_netlint_comb_cycle;
          Alcotest.test_case "output feedback ok" `Quick
            test_netlint_feedback_ok;
          Alcotest.test_case "unused gate" `Quick test_netlint_unused;
        ] );
      ( "json", [ Alcotest.test_case "report shape" `Quick test_json ] );
      ( "properties", [ Qseed.to_alcotest prop_lint_roundtrip ] );
    ]
