(* Tests for the extension components: the BDD package and its CNF
   solver, gate-level netlist export, and the speed-independence
   (persistency) checker. *)

let check = Alcotest.(check bool)


(* ---------------- Bdd ---------------- *)

let test_bdd_constants () =
  check "true" true (Bdd.is_true Bdd.bdd_true);
  check "false" true (Bdd.is_false Bdd.bdd_false);
  check "of_bool" true (Bdd.equal (Bdd.of_bool true) Bdd.bdd_true)

let test_bdd_var_ops () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  check "x and not x" true (Bdd.is_false (Bdd.and_ m x (Bdd.not_ m x)));
  check "x or not x" true (Bdd.is_true (Bdd.or_ m x (Bdd.not_ m x)));
  check "idempotent and" true (Bdd.equal (Bdd.and_ m x x) x);
  check "commutative" true
    (Bdd.equal (Bdd.and_ m x y) (Bdd.and_ m y x));
  check "xor self" true (Bdd.is_false (Bdd.xor m x x));
  check "imp refl" true (Bdd.is_true (Bdd.imp m x x));
  check "nvar" true (Bdd.equal (Bdd.nvar m 0) (Bdd.not_ m x))

let test_bdd_hash_consing () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let a = Bdd.or_ m (Bdd.and_ m x y) (Bdd.and_ m x y) in
  let b = Bdd.and_ m x y in
  check "structural sharing" true (Bdd.equal a b)

let test_bdd_restrict_exists () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.and_ m x y in
  check "f|x=1 = y" true (Bdd.equal (Bdd.restrict m f ~var:0 ~value:true) y);
  check "f|x=0 = 0" true
    (Bdd.is_false (Bdd.restrict m f ~var:0 ~value:false));
  check "exists x. x&y = y" true (Bdd.equal (Bdd.exists m [ 0 ] f) y);
  check "exists both = 1" true (Bdd.is_true (Bdd.exists m [ 0; 1 ] f))

let test_bdd_any_sat () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  (match Bdd.any_sat m (Bdd.and_ m (Bdd.not_ m x) y) with
  | Some path ->
    check "x false" true (List.assoc 0 path = false);
    check "y true" true (List.assoc 1 path = true)
  | None -> Alcotest.fail "satisfiable");
  check "unsat none" true (Bdd.any_sat m Bdd.bdd_false = None);
  (* prefers the all-false corner *)
  match Bdd.any_sat m (Bdd.or_ m x (Bdd.not_ m y)) with
  | Some path -> check "quiet model" true (List.for_all (fun (_, b) -> not b) path)
  | None -> Alcotest.fail "satisfiable"

let test_bdd_sat_count () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let xor = Bdd.xor m x y in
  Alcotest.(check (float 0.001)) "xor has 2 models" 2.0 (Bdd.sat_count m ~n_vars:2 xor);
  Alcotest.(check (float 0.001)) "true has 8 models over 3 vars" 8.0
    (Bdd.sat_count m ~n_vars:3 Bdd.bdd_true)

(* property: BDD of a random CNF agrees with brute-force evaluation *)
let gen_cnf =
  let open QCheck.Gen in
  let* nv = int_range 2 6 in
  let* ncl = int_range 1 12 in
  let* clauses =
    list_repeat ncl
      (list_size (int_range 1 3)
         (let* v = int_range 1 nv in
          let* s = bool in
          return (if s then v else -v)))
  in
  return (nv, clauses)

let build_cnf (nv, clauses) =
  let f = Cnf.create () in
  ignore (Cnf.fresh_vars f nv);
  List.iter (Cnf.add_clause f) clauses;
  f

let prop_bdd_solver_correct =
  QCheck.Test.make ~name:"bdd solver agrees with dpll" ~count:300
    (QCheck.make gen_cnf) (fun input ->
      let f = build_cnf input in
      match (Bdd_solver.solve f, Dpll.solve f) with
      | Bdd_solver.Sat m, _ -> Cnf.eval f m
      | Bdd_solver.Unsat, (Dpll.Unsat, _) -> true
      | Bdd_solver.Unsat, _ -> false
      | Bdd_solver.Blowup, _ -> true)

let prop_bdd_semantics =
  QCheck.Test.make ~name:"bdd eval matches cnf eval" ~count:200
    (QCheck.make gen_cnf) (fun (nv, clauses) ->
      let f = build_cnf (nv, clauses) in
      let m = Bdd.manager () in
      let product =
        Bdd.conj m
          (List.map
             (fun cl ->
               Bdd.disj m
                 (List.map
                    (fun l ->
                      if l > 0 then Bdd.var m l else Bdd.nvar m (-l))
                    cl))
             (Array.to_list (Cnf.clauses f) |> List.map Array.to_list))
      in
      let ok = ref true in
      for bits = 0 to (1 lsl nv) - 1 do
        let assignment = Array.make (nv + 1) false in
        for v = 1 to nv do
          assignment.(v) <- bits land (1 lsl (v - 1)) <> 0
        done;
        if Bdd.eval m product assignment <> Cnf.eval f assignment then ok := false
      done;
      !ok)

let test_bdd_solver_blowup () =
  (* a tiny node limit forces Blowup on anything non-trivial *)
  let f = build_cnf (6, [ [ 1; 2 ]; [ -3; 4 ]; [ 5; -6 ]; [ 2; 3; 5 ] ]) in
  match Bdd_solver.solve ~node_limit:2 f with
  | Bdd_solver.Blowup -> ()
  | _ -> Alcotest.fail "expected blowup"

(* ---------------- Netlist ---------------- *)

let sample_functions () =
  let stg =
    Stg_builder.(
      compile ~name:"pulse" ~inputs:[ "r" ] ~outputs:[ "a" ]
        (seq [ plus "r"; plus "a"; minus "a"; minus "r" ]))
  in
  let r = Mpart.synthesize stg in
  assert (Mpart.verify r = None);
  (r, Netlist.of_functions ~name:"pulse" ~inputs:[ "r" ] r.Mpart.functions)

let test_netlist_structure () =
  let _, nl = sample_functions () in
  check "has gates" true (Netlist.n_gates nl > 0);
  check "transistors counted" true (Netlist.n_transistors nl > 0);
  check "fanin sane" true (Netlist.max_fanin nl >= 1);
  Alcotest.(check (list string)) "inputs" [ "r" ] nl.Netlist.inputs

let contains_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_netlist_verilog () =
  let _, nl = sample_functions () in
  let v = Netlist.to_verilog nl in
  check "comment header" true (String.length v > 2 && String.sub v 0 2 = "//");
  check "module line" true (contains_sub v "module pulse");
  check "endmodule" true (contains_sub v "endmodule")

let test_netlist_eval_matches_covers () =
  let r, nl = sample_functions () in
  let expanded = r.Mpart.expanded in
  (* walk every reachable state: the netlist must compute the implied
     next value of every non-input signal *)
  let ok = ref true in
  for m = 0 to Sg.n_states expanded - 1 do
    let env =
      List.init (Sg.n_signals expanded) (fun s ->
          (Sg.signal_name expanded s, Sg.bit expanded m s))
    in
    let outs = Netlist.eval nl env in
    List.iter
      (fun (name, v) ->
        let s = Sg.find_signal expanded name in
        if v <> Sg.implied_value expanded m s then ok := false)
      outs
  done;
  check "netlist simulates the spec" true !ok

(* ---------------- Persistency ---------------- *)

let test_persistency_clean () =
  let stg =
    Stg_builder.(
      compile ~name:"hs" ~inputs:[ "r" ] ~outputs:[ "a" ]
        (seq [ plus "r"; plus "a"; minus "r"; minus "a" ]))
  in
  let sg = Sg.of_stg stg in
  check "semi modular" true (Persistency.is_semi_modular sg);
  Alcotest.(check (list int)) "no choice states" [] (Persistency.choice_states sg)

let test_persistency_choice_inputs () =
  let stg =
    Stg_builder.(
      compile ~name:"ch" ~inputs:[ "p"; "q" ] ~outputs:[ "x" ]
        (choice
           [
             seq [ plus "p"; plus "x"; minus "x"; minus "p" ];
             seq [ plus "q"; plus "x"; minus "x"; minus "q" ];
           ]))
  in
  let sg = Sg.of_stg stg in
  (* input choice is not a violation *)
  check "still semi modular" true (Persistency.is_semi_modular sg);
  check "choice state found" true (Persistency.choice_states sg <> [])

let test_persistency_violation () =
  (* two outputs in free choice: firing one disables the other *)
  (* a place feeding two output transitions: firing x+ disables y+ *)
  let src =
    ".model race\n.inputs go\n.outputs x y\n.graph\n\
     q go+\ngo+ p\np x+ y+\nx+ go-/1\ngo-/1 x-\nx- q\n\
     y+ go-/2\ngo-/2 y-\ny- q\n.marking { q }\n.end\n"
  in
  let stg = Gformat.parse_string src in
  let sg = Sg.of_stg stg in
  check "violations found" true (not (Persistency.is_semi_modular sg));
  let v = List.hd (Persistency.violations sg) in
  check "message renders" true
    (String.length (Format.asprintf "%a" (Persistency.pp_violation sg) v) > 0)

let test_synthesized_results_semi_modular () =
  (* the expanded graphs of synthesized benchmarks stay semi-modular *)
  List.iter
    (fun name ->
      let e = Bench_suite.find name in
      let r = Mpart.synthesize (e.Bench_suite.build ()) in
      check (name ^ " expanded semi-modular") true
        (Persistency.is_semi_modular r.Mpart.expanded))
    [ "vbe-ex1"; "nousc-ser"; "wrdata" ]

let () =
  Alcotest.run "extensions"
    [
      ( "bdd",
        [
          Alcotest.test_case "constants" `Quick test_bdd_constants;
          Alcotest.test_case "var ops" `Quick test_bdd_var_ops;
          Alcotest.test_case "hash consing" `Quick test_bdd_hash_consing;
          Alcotest.test_case "restrict/exists" `Quick test_bdd_restrict_exists;
          Alcotest.test_case "any_sat" `Quick test_bdd_any_sat;
          Alcotest.test_case "sat_count" `Quick test_bdd_sat_count;
          Alcotest.test_case "solver blowup" `Quick test_bdd_solver_blowup;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "structure" `Quick test_netlist_structure;
          Alcotest.test_case "verilog" `Quick test_netlist_verilog;
          Alcotest.test_case "simulation" `Quick test_netlist_eval_matches_covers;
        ] );
      ( "persistency",
        [
          Alcotest.test_case "clean" `Quick test_persistency_clean;
          Alcotest.test_case "input choice" `Quick test_persistency_choice_inputs;
          Alcotest.test_case "violation" `Quick test_persistency_violation;
          Alcotest.test_case "synthesized" `Quick
            test_synthesized_results_semi_modular;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_bdd_solver_correct;
          QCheck_alcotest.to_alcotest prop_bdd_semantics;
        ] );
    ]
