(* Tier-1 gates for the symbolic speed-independence checker
   (lib/analysis/hazard_check.ml, rules H1-H5):

   - every shipped benchmark's synthesized netlist must certify
     statically (or refute with a counterexample that replays at gate
     level — but on this suite the dynamic oracle passes, so anything
     but a certificate is a disagreement);
   - the static verdict must never contradict the dynamic conformance
     oracle, over the shipped suite and over fuzzed STGs (abstention
     claims nothing and never conflicts);
   - a static certificate makes [Oracle.certify ~skip_when_certified]
     elide the product exploration, and the {!Sim_calls} /
     {!Solver_calls} counters *prove* the skip on the lock-ring family;
   - a genuinely hazardous circuit (an output whose excitation an input
     can steal) is refuted with replayable counterexamples, and the CLI
     surfaces that as exit code 5. *)

let data_dir = Filename.concat ".." "data"
let mpsyn = Filename.concat ".." (Filename.concat "bin" "mpsyn.exe")

let g_files () =
  Sys.readdir data_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".g")
  |> List.sort compare

let analyze_impl (impl : Oracle.impl) =
  Hazard_check.analyze ~expanded:impl.Oracle.expanded
    ~functions:impl.Oracle.functions impl.Oracle.netlist

let impl_of stg = Oracle.impl_of_result (Mpart.synthesize stg)

(* ---------------- shipped benchmarks all certify ---------------- *)

let test_benchmark_certifies file () =
  let stg = Gformat.parse_file (Filename.concat data_dir file) in
  let impl = impl_of stg in
  let hz = analyze_impl impl in
  match hz.Hazard_check.verdict with
  | Hazard_check.Certified cert ->
    List.iter
      (fun rule ->
        Alcotest.(check bool)
          (file ^ ": certificate covers " ^ rule)
          true
          (List.mem rule cert.Hazard_check.c_rules))
      [ "H1"; "H2"; "H4"; "H5" ];
    Alcotest.(check int)
      (file ^ ": one region record per implemented output")
      (List.length impl.Oracle.netlist.Netlist.outputs)
      (List.length cert.Hazard_check.c_regions);
    List.iter
      (fun (rs : Hazard_check.region_stat) ->
        if rs.Hazard_check.rs_er_rise = 0 || rs.Hazard_check.rs_er_fall = 0
        then
          Alcotest.failf "%s: empty excitation region for %s" file
            rs.Hazard_check.rs_signal)
      cert.Hazard_check.c_regions;
    let json = Hazard_check.to_json hz in
    let mem sub =
      let n = String.length sub and len = String.length json in
      let rec go i = i + n <= len && (String.sub json i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (file ^ ": JSON schema tag") true
      (mem "\"schema\":\"mpsyn-hazard/1\"");
    Alcotest.(check bool)
      (file ^ ": JSON certificate") true (mem "\"verdict\":\"certified\"")
  | Hazard_check.Refuted _ | Hazard_check.Abstained _ ->
    Alcotest.failf "%s: expected a certificate, got %s:@\n%a" file
      (Hazard_check.verdict_name hz) Hazard_check.pp_result hz

(* ---------------- certified skip, counter-proven ---------------- *)

(* The lock-ring family is the statically-friendliest corner of the
   suite: the A6 prescreen certifies CSC without SAT, and H1-H5 certify
   speed independence without simulation — so a verify run does zero
   solver calls and zero dynamic explorations, and the atomic counters
   prove it rather than assert it. *)
let test_lockring_skip signals () =
  let impl = impl_of (Bench_gen.lock_ring ~signals) in
  Solver_calls.reset ();
  Sim_calls.reset ();
  let rep = Oracle.certify ~skip_when_certified:true impl in
  Alcotest.(check bool) "passed" true (Oracle.passed rep);
  Alcotest.(check bool) "dynamic skipped" true (Oracle.skipped_dynamic rep);
  Alcotest.(check bool) "statically certified" true
    (Hazard_check.certified rep.Oracle.hazard);
  Alcotest.(check int) "zero dynamic explorations" 0 (Sim_calls.total ());
  Alcotest.(check int) "zero solver calls" 0 (Solver_calls.total ());
  (* forcing the dynamic path simulates — the counter moves, and both
     verdicts still agree *)
  let rep' = Oracle.certify ~skip_when_certified:false impl in
  Alcotest.(check bool) "forced dynamic passes" true (Oracle.passed rep');
  Alcotest.(check bool) "forced dynamic ran" false
    (Oracle.skipped_dynamic rep');
  Alcotest.(check bool) "simulation counted" true (Sim_calls.total () > 0)

(* ---------------- a real hazard is refuted, replayably ------------- *)

(* At the initial state both x+ (output) and b+ (input) are excited; the
   environment firing b+ steals x's pending transition — the classical
   output-persistency violation.  CSC still holds (codes 00, 10, 01 are
   distinct), so synthesis succeeds and produces a circuit that the
   dynamic oracle rejects; H2 must refute it statically, with a
   counterexample that replays under the gate-level semantics. *)
let steal_stg () =
  Stg_builder.(
    compile ~name:"steal" ~inputs:[ "b" ] ~outputs:[ "x" ]
      (choice
         [ seq [ plus "x"; minus "x" ]; seq [ plus "b"; minus "b" ] ]))

let test_refutation () =
  let impl = impl_of (steal_stg ()) in
  let hz = analyze_impl impl in
  (match hz.Hazard_check.verdict with
  | Hazard_check.Refuted cxs ->
    Alcotest.(check bool) "counterexamples present" true (cxs <> []);
    List.iter
      (fun (cx : Hazard_check.counterexample) ->
        Alcotest.(check bool)
          ("replays: " ^ cx.Hazard_check.cx_detail)
          true
          (Hazard_check.replay impl.Oracle.netlist cx))
      cxs;
    Alcotest.(check bool) "H2 fired" true
      (List.exists
         (fun (cx : Hazard_check.counterexample) ->
           cx.Hazard_check.cx_rule = "H2-ack")
         cxs)
  | Hazard_check.Certified _ | Hazard_check.Abstained _ ->
    Alcotest.failf "expected a refutation, got %s:@\n%a"
      (Hazard_check.verdict_name hz) Hazard_check.pp_result hz);
  (* the dynamic oracle must concur, and the report must know they agree *)
  let rep = Oracle.certify impl in
  Alcotest.(check bool) "dynamic fails too" false (Oracle.passed rep);
  Alcotest.(check bool) "static/dynamic agreement" true
    (Oracle.static_agrees rep)

(* ---------------- fuzz: static never contradicts dynamic ---------- *)

let n_fuzz = 50

let test_fuzz_agreement () =
  let rand = Random.State.make [| Qseed.seed |] in
  let synthesized = ref 0 in
  for i = 1 to n_fuzz do
    let stg = Bench_gen.random ~rand in
    match
      Mpart.synthesize
        ~config:{ Mpart.default_config with time_limit = Some 5.0 }
        stg
    with
    | exception (Mpart.Synthesis_failed _ | Sg.Inconsistent _) -> ()
    | r ->
      incr synthesized;
      let impl = Oracle.impl_of_result r in
      let rep = Oracle.certify impl in
      if not (Oracle.static_agrees rep) then
        Alcotest.failf
          "fuzz %d/%d (QCHECK_SEED=%d): static verdict %s contradicts the \
           dynamic oracle:@\n%a@\n%s"
          i n_fuzz Qseed.seed
          (Hazard_check.verdict_name rep.Oracle.hazard)
          Oracle.pp_report rep (Gformat.to_string stg);
      (match rep.Oracle.hazard.Hazard_check.verdict with
      | Hazard_check.Refuted cxs ->
        List.iter
          (fun cx ->
            if not (Hazard_check.replay impl.Oracle.netlist cx) then
              Alcotest.failf
                "fuzz %d/%d (QCHECK_SEED=%d): non-replayable counterexample \
                 escaped analyze:@\n%a"
                i n_fuzz Qseed.seed Hazard_check.pp_counterexample cx)
          cxs
      | _ -> ())
  done;
  if !synthesized < n_fuzz / 2 then
    Alcotest.failf "only %d/%d fuzz cases synthesized — generator drifted?"
      !synthesized n_fuzz

(* ---------------- CLI: exit codes and --jobs determinism ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_cli args =
  let out = Filename.temp_file "mpsyn_hazard" ".out" in
  let code =
    Sys.command (Printf.sprintf "%s %s > %s 2> /dev/null" mpsyn args out)
  in
  let text = read_file out in
  Sys.remove out;
  (code, text)

(* Exit-code discipline (S6): a replayable static refutation is its own
   failure mode, 5 — distinct from lint rejection (3) and usage (2). *)
let test_cli_exit_codes () =
  let steal = Filename.temp_file "steal" ".g" in
  let oc = open_out steal in
  output_string oc (Gformat.to_string (steal_stg ()));
  close_out oc;
  let refused, _ = run_cli (Printf.sprintf "lint --netlist --hazard %s" steal) in
  Sys.remove steal;
  Alcotest.(check int) "refuted netlist exits 5" 5 refused;
  let ok, _ =
    run_cli
      (Printf.sprintf "lint --netlist --hazard %s"
         (Filename.concat data_dir "mr1.g"))
  in
  Alcotest.(check int) "certified netlist exits 0" 0 ok;
  let usage, _ =
    run_cli
      (Printf.sprintf "lint --hazard %s" (Filename.concat data_dir "mr1.g"))
  in
  Alcotest.(check int) "--hazard without --netlist exits 2" 2 usage

(* Diagnostic ordering under --jobs N (S1): the rendered report — plain
   and JSON — must be byte-identical however the per-file analyses were
   scheduled. *)
let test_cli_jobs_deterministic () =
  let files =
    String.concat " "
      (List.map (Filename.concat data_dir) [ "mr1.g"; "atod.g"; "vbe4a.g" ])
  in
  List.iter
    (fun fmt ->
      let c1, o1 =
        run_cli (Printf.sprintf "lint --netlist --hazard %s --jobs 1 %s" fmt files)
      in
      let c4, o4 =
        run_cli (Printf.sprintf "lint --netlist --hazard %s --jobs 4 %s" fmt files)
      in
      Alcotest.(check int) ("exit codes agree" ^ fmt) c1 c4;
      Alcotest.(check string) ("output identical" ^ fmt) o1 o4;
      Alcotest.(check bool) ("output nonempty" ^ fmt) true (o1 <> ""))
    (* --prefix merges the partial-order findings into the same report;
       the byte-identity guarantee must survive that too *)
    [ ""; "--json"; "--prefix"; "--prefix --json" ]

let () =
  Qseed.announce ();
  let files = g_files () in
  if files = [] then failwith "test_hazard: no .g files under ../data";
  Alcotest.run "hazard"
    [
      ( "benchmarks certify",
        List.map
          (fun f -> Alcotest.test_case f `Quick (test_benchmark_certifies f))
          files );
      ( "certified skip",
        [
          Alcotest.test_case "lock-ring2" `Quick (test_lockring_skip 2);
          Alcotest.test_case "lock-ring3" `Quick (test_lockring_skip 3);
          Alcotest.test_case "lock-ring5" `Quick (test_lockring_skip 5);
        ] );
      ( "refutation",
        [ Alcotest.test_case "stolen output, replayable" `Quick test_refutation ] );
      ( "static vs dynamic",
        [
          Alcotest.test_case
            (Printf.sprintf "%d random STGs never disagree" n_fuzz)
            `Slow test_fuzz_agreement;
        ] );
      ( "cli",
        [
          Alcotest.test_case "exit codes (5/0/2)" `Quick test_cli_exit_codes;
          Alcotest.test_case "--jobs 1 = --jobs 4 output" `Quick
            test_cli_jobs_deterministic;
        ] );
    ]
